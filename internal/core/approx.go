package core

import (
	"fmt"
	"math/big"
	"sort"

	"hypertree/internal/cover"
	"hypertree/internal/decomp"
	"hypertree/internal/hypergraph"
	"hypertree/internal/lp"
)

// MinFillFHD computes a fractional hypertree decomposition heuristically:
// a tree decomposition from the min-fill elimination ordering of the
// primal graph, with each bag covered optimally by an exact LP. The
// result is an upper bound on fhw(H) computable for large hypergraphs —
// the practical baseline the paper's approximation guarantees are
// measured against.
func MinFillFHD(h *hypergraph.Hypergraph) (*big.Rat, *decomp.Decomp) {
	d := eliminationDecomp(h, minFillOrder(h, nil), false, nil)
	if d == nil {
		return nil, nil
	}
	return d.Width(), d
}

// MinFillGHD is MinFillFHD with exact integral covers per bag, yielding a
// GHD and an upper bound on ghw(H).
func MinFillGHD(h *hypergraph.Hypergraph) (int, *decomp.Decomp) {
	d := eliminationDecomp(h, minFillOrder(h, nil), true, nil)
	if d == nil {
		return -1, nil
	}
	w := d.Width()
	return int(w.Num().Int64()), d
}

// minFillOrder returns an elimination ordering of the primal graph chosen
// greedily by minimum fill-in. A non-nil done channel is polled once per
// eliminated vertex (see cancel.go).
func minFillOrder(h *hypergraph.Hypergraph, done <-chan struct{}) []int {
	n := h.NumVertices()
	adj := make([]hypergraph.VertexSet, n)
	for v, s := range h.AdjacencyMatrix() {
		adj[v] = s.Clone()
	}
	eliminated := hypergraph.NewVertexSet(n)
	order := make([]int, 0, n)
	for len(order) < n {
		if done != nil {
			pollCancel(done)
		}
		bestV, bestFill := -1, int(^uint(0)>>1)
		for v := 0; v < n; v++ {
			if eliminated.Has(v) {
				continue
			}
			nb := adj[v].Diff(eliminated).Vertices()
			fill := 0
			for i := 0; i < len(nb); i++ {
				for j := i + 1; j < len(nb); j++ {
					if !adj[nb[i]].Has(nb[j]) {
						fill++
					}
				}
			}
			if fill < bestFill {
				bestV, bestFill = v, fill
			}
		}
		// Eliminate bestV: connect its remaining neighbours.
		nb := adj[bestV].Diff(eliminated).Vertices()
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				adj[nb[i]].Add(nb[j])
				adj[nb[j]].Add(nb[i])
			}
		}
		eliminated.Add(bestV)
		order = append(order, bestV)
	}
	return order
}

// eliminationDecomp builds the tree decomposition induced by an
// elimination ordering and covers each bag (integrally or fractionally).
// A non-nil done channel is polled once per bag cover (see cancel.go).
func eliminationDecomp(h *hypergraph.Hypergraph, order []int, integral bool, done <-chan struct{}) *decomp.Decomp {
	n := h.NumVertices()
	if n == 0 || h.NumEdges() == 0 {
		return nil
	}
	adj := make([]hypergraph.VertexSet, n)
	for v, s := range h.AdjacencyMatrix() {
		adj[v] = s.Clone()
	}
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	bags := make([]hypergraph.VertexSet, n)
	eliminated := hypergraph.NewVertexSet(n)
	for i, v := range order {
		nb := adj[v].Diff(eliminated)
		bags[i] = nb.With(v)
		vs := nb.Vertices()
		for a := 0; a < len(vs); a++ {
			for b := a + 1; b < len(vs); b++ {
				adj[vs[a]].Add(vs[b])
				adj[vs[b]].Add(vs[a])
			}
		}
		eliminated.Add(v)
	}
	d := decomp.New(h)
	ids := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		if done != nil {
			pollCancel(done)
		}
		parent := -1
		if i < n-1 {
			next := i + 1
			bestPos := n
			bags[i].ForEach(func(u int) bool {
				if pos[u] > i && pos[u] < bestPos {
					bestPos = pos[u]
				}
				return true
			})
			if bestPos < n {
				next = bestPos
			}
			parent = ids[next]
		}
		var cov cover.Fractional
		if integral {
			cov = cover.Fractional{}
			ec := cover.EdgeCover(h, bags[i], 0)
			if ec == nil {
				return nil
			}
			for _, e := range ec {
				cov[e] = lp.RI(1)
			}
		} else {
			var w *big.Rat
			w, cov = cover.FractionalEdgeCover(h, bags[i])
			if w == nil {
				return nil
			}
		}
		ids[i] = d.AddNode(parent, bags[i], cov)
	}
	return d
}

// IntegralizeCovers implements the approximation step of Theorem 6.23:
// given an FHD, replace each node's fractional cover by an integral edge
// cover of the same bag (exact branch-and-bound when the bag is small,
// greedy set cover otherwise), producing a GHD of width
// ≤ max_u ρ(Bu) ≤ O(log(ρ*)·2^{vc+2}) · width(F) for bounded
// VC-dimension / BMIP classes.
func IntegralizeCovers(d *decomp.Decomp, exactBagLimit int) *decomp.Decomp {
	out := d.Clone()
	for u := range out.Nodes {
		bag := out.Nodes[u].Bag
		var edges []int
		if exactBagLimit <= 0 || bag.Count() <= exactBagLimit {
			edges = cover.EdgeCover(d.H, bag, 0)
		} else {
			edges = cover.GreedyEdgeCover(d.H, bag)
		}
		if edges == nil {
			return nil
		}
		cov := cover.Fractional{}
		for _, e := range edges {
			cov[e] = lp.RI(1)
		}
		out.Nodes[u].Cover = cov
	}
	return out
}

// BoundFractionalPart implements the transformation of Lemma 6.4: given
// an FHD F of width ≤ k of a hypergraph with iwidth(H) ≤ i, it rounds the
// "big heavy" edges (weight ≥ 1/2 and ≥ d = 2k²i/ε covered vertices) of
// every node cover up to weight 1. The result has width ≤ k + ε and
// c-bounded fractional part for c = 2ik² + 4k³i/ε.
//
// k is taken as the current width of d; eps must be positive.
func BoundFractionalPart(d *decomp.Decomp, eps *big.Rat) *decomp.Decomp {
	out := d.Clone()
	k := d.Width()
	i := lp.RI(int64(d.H.IntersectionWidth()))
	// Threshold d = 2k²i/ε on |e ∩ B(γu)|.
	thr := new(big.Rat).Mul(lp.RI(2), new(big.Rat).Mul(k, k))
	thr.Mul(thr, i)
	thr.Quo(thr, eps)
	half := lp.R(1, 2)
	one := lp.RI(1)
	for u := range out.Nodes {
		covered := out.CoveredSet(u)
		for e, w := range out.Nodes[u].Cover {
			if w.Cmp(half) < 0 || w.Cmp(one) >= 0 {
				continue
			}
			sz := lp.RI(int64(d.H.Edge(e).Intersect(covered).Count()))
			if sz.Cmp(thr) >= 0 {
				out.Nodes[u].Cover[e] = lp.RI(1) // big heavy edge: round up
			}
		}
	}
	return out
}

// FracPartBound returns the c of Lemma 6.4 for parameters k, i, ε:
// c = 2ik² + 4k³i/ε.
func FracPartBound(k, eps *big.Rat, i int) *big.Rat {
	ir := lp.RI(int64(i))
	k2 := new(big.Rat).Mul(k, k)
	a := new(big.Rat).Mul(lp.RI(2), new(big.Rat).Mul(ir, k2))
	b := new(big.Rat).Mul(lp.RI(4), new(big.Rat).Mul(k2, k))
	b.Mul(b, ir)
	b.Quo(b, eps)
	return a.Add(a, b)
}

// RepairWeakSCVs implements the transformation in the proof of Lemma 6.5:
// it eliminates violations of the weak special condition (Definition 6.3)
// from an FHD by either extending bags along critical paths (Case 1) or
// replacing a weight-1 edge e by the subedge e ∩ Bu (Case 2). Subedges
// are added to the hypergraph on demand (the lemma's function f_{(c,i,k)}
// pre-computes them; adding them lazily is equivalent and keeps the
// hypergraph small). It returns the repaired FHD over the augmented
// hypergraph together with the augmentation.
func RepairWeakSCVs(d *decomp.Decomp) (*decomp.Decomp, *Augmented, error) {
	aug := Augment(d.H, nil)
	out := d.Clone()
	out.H = aug.H
	one := lp.RI(1)
	for round := 0; ; round++ {
		if round > 10000 {
			return nil, nil, fmt.Errorf("core: weak-SCV repair did not converge")
		}
		u, e, x := findWeakSCV(out, one)
		if u < 0 {
			return out, aug, nil
		}
		// Find u*: the node closest to u covering e, and the path π.
		path, err := CriticalPath(out, u, e)
		if err != nil {
			return nil, nil, err
		}
		// Case 1: every node on π after u contains x → add x to Bu.
		allContain := true
		for _, n := range path[1:] {
			if !out.Nodes[n].Bag.Has(x) {
				allContain = false
				break
			}
		}
		if allContain {
			out.Nodes[u].Bag.Add(x)
			continue
		}
		// Case 2: replace e in γu by e' = e ∩ Bu.
		sub := aug.H.Edge(e).Intersect(out.Nodes[u].Bag)
		id := findOrAddSubedge(aug, sub)
		w := out.Nodes[u].Cover[e]
		delete(out.Nodes[u].Cover, e)
		if out.Nodes[u].Cover[id] == nil {
			out.Nodes[u].Cover[id] = new(big.Rat)
		}
		out.Nodes[u].Cover[id].Add(out.Nodes[u].Cover[id], w)
		if out.Nodes[u].Cover[id].Cmp(one) > 0 {
			out.Nodes[u].Cover[id] = lp.RI(1)
		}
	}
}

// findWeakSCV returns a weak special-condition violation (u, e, x) with
// no violation strictly below u, or (-1,-1,-1).
func findWeakSCV(d *decomp.Decomp, one *big.Rat) (int, int, int) {
	// Post-order traversal finds deepest violations first.
	var result = []int{-1, -1, -1}
	var rec func(u int) bool
	rec = func(u int) bool {
		for _, c := range d.Nodes[u].Children {
			if rec(c) {
				return true
			}
		}
		vtu := d.SubtreeVertices(u)
		for e, w := range d.Nodes[u].Cover {
			if w.Cmp(one) != 0 {
				continue
			}
			bad := d.H.Edge(e).Intersect(vtu).Diff(d.Nodes[u].Bag)
			if !bad.IsEmpty() {
				result = []int{u, e, bad.First()}
				return true
			}
		}
		return false
	}
	if rec(d.Root) {
		return result[0], result[1], result[2]
	}
	return -1, -1, -1
}

// findOrAddSubedge returns the index of sub in aug.H, adding it (with
// originator tracking) if absent.
func findOrAddSubedge(aug *Augmented, sub hypergraph.VertexSet) int {
	for e := 0; e < aug.H.NumEdges(); e++ {
		if aug.H.Edge(e).Equal(sub) {
			return e
		}
	}
	orig := 0
	for e := 0; e < aug.Orig.NumEdges(); e++ {
		if sub.IsSubsetOf(aug.Orig.Edge(e)) {
			orig = e
			break
		}
	}
	id := aug.H.AddEdgeSet(fmt.Sprintf("sub%d", aug.H.NumEdges()), sub)
	for len(aug.Origin) <= id {
		aug.Origin = append(aug.Origin, orig)
	}
	aug.Origin[id] = orig
	return id
}

// SubedgesUpTo computes the subedge function f_{(c,i,k)} of Lemma 6.5:
// all subedges of edges of H with at most k·i+c vertices. sizeLimit is
// k·i+c; maxSets caps the output.
func SubedgesUpTo(h *hypergraph.Hypergraph, sizeLimit, maxSets int) ([]hypergraph.VertexSet, error) {
	var seen hypergraph.Interner
	var out []hypergraph.VertexSet
	var add func(s hypergraph.VertexSet) error
	add = func(s hypergraph.VertexSet) error {
		if s.IsEmpty() {
			return nil
		}
		_, canon, isNew := seen.Intern(s)
		if !isNew {
			return nil
		}
		out = append(out, canon)
		if maxSets > 0 && len(out) > maxSets {
			return fmt.Errorf("core: bounded subedge closure exceeds %d sets", maxSets)
		}
		return nil
	}
	for e := 0; e < h.NumEdges(); e++ {
		vs := h.Edge(e).Vertices()
		// Enumerate subsets of size ≤ sizeLimit.
		var rec func(start int, cur []int) error
		rec = func(start int, cur []int) error {
			if len(cur) > 0 {
				s := hypergraph.NewVertexSet(h.NumVertices())
				for _, v := range cur {
					s.Add(v)
				}
				if err := add(s); err != nil {
					return err
				}
			}
			if len(cur) == sizeLimit {
				return nil
			}
			for i := start; i < len(vs); i++ {
				if err := rec(i+1, append(cur, vs[i])); err != nil {
					return err
				}
			}
			return nil
		}
		if err := rec(0, nil); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}
