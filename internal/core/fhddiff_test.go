package core_test

// Differential tests for the lazy FHD subedge closure (PR 5): CheckFHD
// with the lazy per-scope f⁺ generation must decide — and, at the exact
// threshold, weigh — exactly like the reconstructed eager pipeline that
// materializes the full subedge closure up front and passes it through
// FHDOptions.Subedges. The comparison runs over the testdata/corpus
// mini corpus and the E-series generator families, mirroring the PR-3
// differential pattern for GHD in engine_test.go.
//
// At k = fhw (from the exact elimination DP) any accepted witness has
// width exactly fhw — no FHD is narrower — so "widths agree exactly" is
// a meaningful assertion there; strictly below fhw both sides must
// reject.

import (
	"math/big"
	"math/rand"
	"testing"

	"hypertree/internal/core"
	"hypertree/internal/corpus"
	"hypertree/internal/decomp"
	"hypertree/internal/hypergraph"
	"hypertree/internal/lp"
)

// eagerCheckFHD reconstructs the pre-PR-5 default: materialize the full
// subedge closure f⁺ and run CheckFHD over the explicit pool (the eager
// augmented-hypergraph path).
func eagerCheckFHD(t *testing.T, h *hypergraph.Hypergraph, k *big.Rat) *decomp.Decomp {
	t.Helper()
	subs, err := core.FullSubedgeClosure(h, 0)
	if err != nil {
		t.Fatalf("full closure: %v", err)
	}
	d, err := core.CheckFHD(h, k, core.FHDOptions{Subedges: subs})
	if err != nil {
		t.Fatalf("eager CheckFHD: %v", err)
	}
	return d
}

// diffFHD compares lazy against eager on one instance at k = fhw and
// just below, validating both witnesses and pinning both widths to fhw.
func diffFHD(t *testing.T, name string, h *hypergraph.Hypergraph) {
	t.Helper()
	fhw, _ := core.ExactFHW(h)
	if fhw == nil {
		return
	}
	lazy, err := core.CheckFHD(h, fhw, core.FHDOptions{})
	if err != nil {
		t.Fatalf("%s: lazy CheckFHD: %v", name, err)
	}
	eager := eagerCheckFHD(t, h, fhw)
	if lazy == nil || eager == nil {
		t.Fatalf("%s: accept mismatch at fhw=%s: lazy=%v eager=%v",
			name, fhw.RatString(), lazy != nil, eager != nil)
	}
	if lazy.Width().Cmp(eager.Width()) != 0 || lazy.Width().Cmp(fhw) != 0 {
		t.Fatalf("%s: width mismatch at fhw=%s: lazy=%s eager=%s",
			name, fhw.RatString(), lazy.Width().RatString(), eager.Width().RatString())
	}
	if err := lazy.ValidateWidth(decomp.FHD, fhw); err != nil {
		t.Fatalf("%s: lazy witness invalid: %v", name, err)
	}
	if err := eager.ValidateWidth(decomp.FHD, fhw); err != nil {
		t.Fatalf("%s: eager witness invalid: %v", name, err)
	}
	// The rejection leg exhausts the whole search space, which grows
	// much faster than the acceptance side; keep it to small instances
	// so the suite stays CI-sized while still covering both decisions.
	if fhw.Cmp(lp.RI(1)) > 0 && h.NumEdges() <= 8 {
		below := new(big.Rat).Sub(fhw, lp.R(1, 1000))
		lazyNo, err := core.CheckFHD(h, below, core.FHDOptions{})
		if err != nil {
			t.Fatalf("%s: lazy CheckFHD below fhw: %v", name, err)
		}
		eagerNo := eagerCheckFHD(t, h, below)
		if lazyNo != nil || eagerNo != nil {
			t.Fatalf("%s: rejection mismatch below fhw: lazy=%v eager=%v",
				name, lazyNo != nil, eagerNo != nil)
		}
	}
}

// fhdDiffable gates instances to where both sides are tractable: the
// exact DP needs few vertices, the eager closure is exponential in the
// rank, and the support enumeration in the edge count.
func fhdDiffable(h *hypergraph.Hypergraph) bool {
	return h.NumVertices() <= 14 && h.NumEdges() <= 16 && h.Rank() <= 5
}

// TestLazyFHDMatchesEagerClosureOnCorpus runs the differential over
// every tractable instance of the testdata/corpus mini corpus.
func TestLazyFHDMatchesEagerClosureOnCorpus(t *testing.T) {
	instances, err := corpus.LoadDir("../../testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) == 0 {
		t.Fatal("empty corpus")
	}
	ran := 0
	for _, in := range instances {
		h, _, err := in.Read()
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if !fhdDiffable(h) {
			continue
		}
		ran++
		diffFHD(t, in.Name, h)
	}
	if ran < 10 {
		t.Fatalf("only %d corpus instances were diffable; the gate is too tight", ran)
	}
}

// TestLazyFHDMatchesEagerClosureOnGenerators runs the differential over
// the E-series generator families: the E08 bounded-degree instances,
// hypercycles, grids and cliques. (ExampleH0 — degree 5, support bound
// 10 — belongs to the GHD differentials; the FHD tractability class of
// Theorem 5.2 is bounded degree, and its Check(FHD,k) run costs seconds
// for no extra coverage.)
func TestLazyFHDMatchesEagerClosureOnGenerators(t *testing.T) {
	fixtures := map[string]*hypergraph.Hypergraph{
		"path5":        hypergraph.Path(5),
		"cycle6":       hypergraph.Cycle(6),
		"clique4":      hypergraph.Clique(4),
		"grid2x3":      hypergraph.Grid(2, 3),
		"hypercycle":   hypergraph.HyperCycle(6, 3, 1),
		"twotriangles": hypergraph.MustParse("a1(x,y),a2(y,z),a3(z,x),b1(p,q),b2(q,r),b3(r,p)"),
	}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fixtures["bdp"+string(rune('0'+seed))] = hypergraph.RandomBoundedDegree(rng, 7, 5, 3, 2)
	}
	for name, h := range fixtures {
		if !fhdDiffable(h) {
			t.Fatalf("fixture %s is not diffable; shrink it", name)
		}
		diffFHD(t, name, h)
	}
}

// TestLazyFHDSubedgeCapFallsBackLikeEager — the lazy generator must
// honor MaxSubedges: when the cap trips, CheckFHD falls back to the
// h_{d,k} closure, whose accepts are still sound.
func TestLazyFHDSubedgeCapFallsBackLikeEager(t *testing.T) {
	h := hypergraph.Clique(3)
	// fhw(K3) = 3/2 needs fractional covers over subedge atoms; a tiny
	// cap forces the h_{d,k} fallback, which still accepts at 3/2 with a
	// valid witness of exactly that width.
	d, err := core.CheckFHD(h, lp.R(3, 2), core.FHDOptions{MaxSubedges: 2})
	if err != nil {
		t.Fatalf("capped CheckFHD must fall back, not fail: %v", err)
	}
	if d == nil {
		t.Fatal("h_{d,k} fallback must still accept K3 at 3/2")
	}
	if err := d.ValidateWidth(decomp.FHD, lp.R(3, 2)); err != nil {
		t.Fatal(err)
	}
}
