package core

// arena.go — epoch allocation for the engine's subproblem records.
//
// The engine's allocations fall into two lifetime classes, and the
// pre-PR-6 code paid general-purpose heap costs for both. Accepted
// subproblems produce *permanent* data — the memoized node, its bag
// copy, its children key slice — that lives exactly as long as the
// engine (one Check(·,k) run): nodeArena carves those out of chunked
// slabs, so a run makes a handful of large allocations instead of three
// small ones per memoized node, and the whole epoch is freed at once
// when the engine is dropped. Everything *speculative* — the bag buffer
// and child keys of a guess that may yet be rejected — lives in
// depth-indexed buffers and mark-rolled stacks on the engine itself
// (see tryChildren), so a rejected guess or a memo hit frees its
// scratch in O(1) by truncating to the mark, allocating nothing.
//
// Chunks are never reallocated, only re-sliced, so pointers and
// sub-slices handed out remain valid when a fresh chunk is started:
// earlier chunks stay alive through the references into them.

import "hypertree/internal/hypergraph"

// Chunk sizes double per allocation between these bounds, so small runs
// (the E-series instances) pay near-malloc-sized slabs while long runs
// amortize towards a few large ones.
const (
	arenaWordChunkMin, arenaWordChunkMax = 128, 8192
	arenaKeyChunkMin, arenaKeyChunkMax   = 32, 2048
	arenaNodeChunkMin, arenaNodeChunkMax = 16, 512
)

// nodeArena allocates the permanent per-node data of one engine run.
// The zero value is ready to use.
type nodeArena struct {
	words []uint64
	keys  []engineKey
	nodes []engineNode

	wordSz, keySz, nodeSz int // next chunk sizes
}

// chunkSize doubles *sz within [min, max] and returns a size ≥ need.
func chunkSize(sz *int, min, max, need int) int {
	if *sz < min {
		*sz = min
	}
	n := *sz
	if *sz < max {
		*sz *= 2
	}
	if need > n {
		n = need
	}
	return n
}

// set copies s into the word slab, trimmed of trailing zero words (every
// VertexSet operation tolerates short operands). Returns nil for the
// empty set.
func (a *nodeArena) set(s hypergraph.VertexSet) hypergraph.VertexSet {
	n := len(s)
	for n > 0 && s[n-1] == 0 {
		n--
	}
	if n == 0 {
		return nil
	}
	if len(a.words) < n {
		a.words = make([]uint64, chunkSize(&a.wordSz, arenaWordChunkMin, arenaWordChunkMax, n))
	}
	out := a.words[:n:n]
	a.words = a.words[n:]
	copy(out, s[:n])
	return hypergraph.VertexSet(out)
}

// keySlice copies ks into the key slab. Returns nil for an empty slice.
func (a *nodeArena) keySlice(ks []engineKey) []engineKey {
	n := len(ks)
	if n == 0 {
		return nil
	}
	if len(a.keys) < n {
		a.keys = make([]engineKey, chunkSize(&a.keySz, arenaKeyChunkMin, arenaKeyChunkMax, n))
	}
	out := a.keys[:n:n]
	a.keys = a.keys[n:]
	copy(out, ks)
	return out
}

// node returns a zeroed engineNode from the node slab. The pointer stays
// valid for the arena's lifetime: chunks are re-sliced, never moved.
func (a *nodeArena) node() *engineNode {
	if len(a.nodes) == 0 {
		a.nodes = make([]engineNode, chunkSize(&a.nodeSz, arenaNodeChunkMin, arenaNodeChunkMax, 1))
	}
	n := &a.nodes[0]
	a.nodes = a.nodes[1:]
	return n
}
