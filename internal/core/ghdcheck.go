package core

import (
	"fmt"

	"hypertree/internal/decomp"
	"hypertree/internal/hypergraph"
)

// Options configure the Check(GHD,k) reduction to Check(HD,k).
type Options struct {
	// MaxSubedges caps the subedge closure size (0 = library default).
	MaxSubedges int
}

const defaultMaxSubedges = 2_000_000

// CheckGHDViaBIP decides Check(GHD,k) using the Theorem 4.11/4.15
// technique: augment H with the polynomially many subedges f(H,k) that
// suffice under the bounded intersection property, run Check(HD,k) on the
// augmented hypergraph, and map the resulting HD back to a GHD of H.
//
// The procedure is sound and complete for every hypergraph (f(H,k) always
// contains the required subedges e ∩ Bu of bag-maximal GHDs — the BIP
// only bounds how many sets f(H,k) has). For hypergraphs with large
// intersection width the closure may exceed the cap, in which case an
// error is returned.
func CheckGHDViaBIP(h *hypergraph.Hypergraph, k int, opt Options) (*decomp.Decomp, error) {
	max := opt.MaxSubedges
	if max == 0 {
		max = defaultMaxSubedges
	}
	subs, err := BIPSubedges(h, k, max)
	if err != nil {
		return nil, err
	}
	aug := Augment(h, subs)
	hd := CheckHD(aug.H, k)
	if hd == nil {
		return nil, nil
	}
	ghd := aug.ToOriginal(hd)
	return ghd, nil
}

// CheckGHDExact decides Check(GHD,k) for small hypergraphs using the
// limit subedge function f⁺ (all subedges), for which
// hw(H ∪ f⁺(H)) = ghw(H) holds unconditionally.
func CheckGHDExact(h *hypergraph.Hypergraph, k int, opt Options) (*decomp.Decomp, error) {
	max := opt.MaxSubedges
	if max == 0 {
		max = defaultMaxSubedges
	}
	subs, err := FullSubedgeClosure(h, max)
	if err != nil {
		return nil, err
	}
	aug := Augment(h, subs)
	hd := CheckHD(aug.H, k)
	if hd == nil {
		return nil, nil
	}
	return aug.ToOriginal(hd), nil
}

// GHWViaBIP computes ghw(H) by iterating CheckGHDViaBIP.
func GHWViaBIP(h *hypergraph.Hypergraph, maxK int, opt Options) (int, *decomp.Decomp, error) {
	if maxK <= 0 {
		maxK = h.NumEdges()
	}
	for k := 1; k <= maxK; k++ {
		d, err := CheckGHDViaBIP(h, k, opt)
		if err != nil {
			return -1, nil, err
		}
		if d != nil {
			return k, d, nil
		}
	}
	return -1, nil, fmt.Errorf("core: ghw(H) > %d", maxK)
}
