package core

import (
	"fmt"

	"hypertree/internal/cover"
	"hypertree/internal/decomp"
	"hypertree/internal/hypergraph"
	"hypertree/internal/lp"
)

// Options configure the Check(GHD,k) procedures (and, via CheckHDOpt,
// Check(HD,k); the subedge cap is ignored there).
type Options struct {
	// MaxSubedges caps the number of distinct subedges the lazy
	// generator may intern over the whole run (0 = library default).
	MaxSubedges int
	// Stats, when non-nil, receives the engine's run counters on
	// completion (added, so one sink can accumulate across deepening
	// levels). Leave nil when not tracing.
	Stats *EngineStats
	// Parallelism bounds the CPU workers one engine run may use:
	// speculative top-level guess exploration plus concurrent child
	// components (parallel.go). 1 (or negative) is the exact serial
	// search — bit-for-bit, preserving the allocation pins — an
	// explicit n > 1 is obeyed as given, and the 0 default means
	// GOMAXPROCS on instances large enough to amortize the machinery.
	Parallelism int
	// Budget, when non-nil, is the shared CPU-token pool extra workers
	// draw from, so concurrent strategies racing over one solve split
	// the host instead of multiplying (solve threads one per request).
	// Nil gives the run a private budget of Parallelism-1 tokens.
	Budget *Budget
}

const defaultMaxSubedges = 2_000_000

// ghdOracle chooses covers for Check(GHD,k) via the Theorem 4.11/4.15
// reduction, with the subedge pool generated lazily per subproblem
// instead of materialized up front. A guess is an HD-style λ of ≤ k
// "atoms", each a subset of the subproblem scope W ∪ C:
//
//   - every original edge e intersecting the scope contributes the atom
//     e ∩ scope, and
//   - under the BIP family f(H,k), every non-empty subset of
//     e ∩ (e1 ∪ … ∪ ej) ∩ scope with j ≤ k and e, e1, …, ej edges
//     intersecting the scope (exact mode uses f⁺ instead: every
//     non-empty subset of e ∩ scope).
//
// This atom set decides exactly like Check(HD,k) on the eagerly
// augmented hypergraph H ∪ f(H,k): a subedge s is a candidate there iff
// s ∩ scope ≠ ∅, only s ∩ scope ever reaches the bag B(λ) ∩ scope, and
// s ∩ scope is again of the form above with all generators meeting the
// scope (generators disjoint from the bag can be dropped from the
// union). Conversely every atom is a member of f(H,k) (resp. f⁺).
// Connectivity is also unchanged — subedges are contained in their
// originators — so the engine recurses on the original hypergraph.
//
// Laziness pays twice. Per subproblem, original-edge atoms are tried
// first and the subedge atoms of a scope are generated only when the
// enumeration actually reaches them — subproblems that accept on
// original edges (the common case on instances where hw = ghw locally)
// never generate a single subedge. And when generation does run it is
// scoped: deep subproblems enumerate subsets of e ∩ (…) ∩ scope, not of
// the full base sets. Atoms are interned in a pool shared across
// scopes, so equal sets are stored once and (component, connector) memo
// keys stay stable.
type ghdOracle struct {
	h       *hypergraph.Hypergraph
	k       int
	exact   bool // f⁺ atoms (all subedges) instead of the BIP family f(H,k)
	maxSets int
	err     error // closure cap exceeded or subset enumeration refused

	pool  hypergraph.Interner   // canonical atom sets, shared across scopes
	nsubs int                   // distinct generated subedge atoms (cap accounting)
	cands scopeCache[*ghdCands] // per-scope candidate cache

	// Scratch buffers; each is fully consumed before the engine recurses.
	scope, b hypergraph.VertexSet
	ebuf     hypergraph.EdgeSet

	// Mark-rolled per-subproblem stacks shared across the recursion
	// (same discipline as the engine's childBuf): a frame appends its
	// segment, reads it via the field — deeper frames always truncate
	// back before returning, and appends never touch live segments
	// below the frame's mark — and truncates on exit.
	ordBuf []ghdAtom // candidate order of the enumerating subproblems
	lamBuf []ghdAtom // the shared λ stack
}

// ghdCands is the per-scope candidate cache.
type ghdCands struct {
	scope hypergraph.VertexSet // canonical scope set
	orig  []ghdAtom            // original-edge atoms, ascending edge id
	subs  []ghdAtom            // lazily generated subedge atoms
	full  bool                 // subs has been generated
	seen  hypergraph.VertexSet // pool-id bitset: ids already present in orig/subs
}

// ghdAtom is one candidate bag contribution: a set ⊆ scope and an
// original edge containing it (the witness cover charges the
// originator, as in Theorem 4.11's GHD-from-HD step).
type ghdAtom struct {
	set  hypergraph.VertexSet
	orig int
}

func newGHDOracle(h *hypergraph.Hypergraph, k int, exact bool, maxSets int) *ghdOracle {
	n := h.NumVertices()
	return &ghdOracle{
		h: h, k: k, exact: exact, maxSets: maxSets,
		scope: hypergraph.NewVertexSet(n),
		b:     hypergraph.NewVertexSet(n),
		ebuf:  hypergraph.NewEdgeSet(h.NumEdges()),
	}
}

func (o *ghdOracle) guesses(e *engine, c hypergraph.VertexSet, st engineState, try func(engineGuess) bool) bool {
	if o.err != nil {
		return false
	}
	w := st.a
	o.scope = o.scope.CopyFrom(w).UnionInPlace(c)
	cd := o.cands.get(o.scope, func(canonScope hypergraph.VertexSet) *ghdCands {
		cd := &ghdCands{scope: canonScope}
		o.ebuf = o.h.EdgesIntersectingSet(canonScope, o.ebuf)
		o.ebuf.ForEach(func(ed int) bool {
			o.b = o.b.CopyFrom(o.h.Edge(ed)).IntersectInPlace(canonScope)
			id, canon, _ := o.pool.Intern(o.b)
			if !cd.seen.Has(id) {
				cd.seen.Add(id)
				cd.orig = append(cd.orig, ghdAtom{set: canon, orig: ed})
			}
			return true
		})
		return cd
	})

	// Subproblem-local candidate order: atoms intersecting C first (they
	// create progress), originals before subedges so that the expensive
	// generation only runs when original edges cannot finish the level.
	ordMark, lamMark := len(o.ordBuf), len(o.lamBuf)
	appendOrdered := func(atoms []ghdAtom) {
		for _, a := range atoms {
			if a.set.Intersects(c) {
				o.ordBuf = append(o.ordBuf, a)
			}
		}
		for _, a := range atoms {
			if !a.set.Intersects(c) {
				o.ordBuf = append(o.ordBuf, a)
			}
		}
	}
	appendOrdered(cd.orig)
	extended := cd.full
	if extended {
		appendOrdered(cd.subs)
	}

	var rec func(start int) bool
	rec = func(start int) bool {
		if o.err != nil {
			return false
		}
		if len(o.lamBuf) > lamMark && o.check(e, c, w, o.lamBuf[lamMark:], try) {
			return true
		}
		if len(o.lamBuf)-lamMark == o.k {
			return false
		}
		for i := start; ; i++ {
			if ordMark+i >= len(o.ordBuf) {
				if extended {
					break
				}
				o.extend(e, cd) // idempotent: a deeper subproblem may have run it
				extended = true
				if o.err != nil {
					return false
				}
				appendOrdered(cd.subs)
				if ordMark+i >= len(o.ordBuf) {
					break
				}
			}
			// Speculative root partition (parallel runs only): first
			// atoms belonging to another worker's slice are skipped.
			if e.specSkip(len(o.lamBuf) == lamMark, i) {
				continue
			}
			a := o.ordBuf[ordMark+i]
			o.lamBuf = append(o.lamBuf, a)
			e.compPush(i, a.set) // keyed by ordered-list index
			if rec(i + 1) {
				return true
			}
			e.compPop()
			o.lamBuf = o.lamBuf[:len(o.lamBuf)-1]
		}
		return false
	}
	res := rec(0)
	o.ordBuf = o.ordBuf[:ordMark]
	o.lamBuf = o.lamBuf[:lamMark]
	return res
}

// dynAware: the λ stack above is mirrored into the engine's incremental
// component structure.
func (o *ghdOracle) dynAware() {}

// oracleErr exposes the sideways failure to parallel runs (errOracle).
func (o *ghdOracle) oracleErr() error { return o.err }

// check tests one guess λ of atoms. Atoms are subsets of the scope, so
// the bag is their plain union.
func (o *ghdOracle) check(e *engine, c, w hypergraph.VertexSet, lambda []ghdAtom, try func(engineGuess) bool) bool {
	e.poll()
	o.b = o.b.Reset()
	for _, a := range lambda {
		o.b = o.b.UnionInPlace(a.set)
	}
	if !w.IsSubsetOf(o.b) {
		return false
	}
	if !o.b.Intersects(c) {
		return false
	}
	lam := lambda
	return try(engineGuess{bag: o.b, cover: func() cover.Fractional {
		cov := cover.Fractional{}
		one := lp.RI(1)
		for _, a := range lam {
			cov[a.orig] = one // duplicates collapse; weight beyond 1 never helps
		}
		return cov
	}})
}

// extend generates the subedge atoms of cd's scope, once.
func (o *ghdOracle) extend(e *engine, cd *ghdCands) {
	if cd.full || o.err != nil {
		return
	}
	cd.full = true
	scope := cd.scope
	o.ebuf = o.h.EdgesIntersectingSet(scope, o.ebuf)
	es := make([]int, 0, o.ebuf.Count())
	o.ebuf.ForEach(func(ed int) bool {
		es = append(es, ed)
		return true
	})
	// add interns one candidate subedge for this scope; orig is the edge
	// it was carved from. It does not retain s.
	add := func(s hypergraph.VertexSet, orig int) error {
		if s.IsEmpty() {
			return nil
		}
		id, canon, isNew := o.pool.Intern(s)
		if isNew {
			o.nsubs++
			if o.maxSets > 0 && o.nsubs > o.maxSets {
				if o.exact {
					return fmt.Errorf("core: full subedge closure exceeds %d sets", o.maxSets)
				}
				return fmt.Errorf("core: BIP subedge closure exceeds %d sets", o.maxSets)
			}
		}
		if cd.seen.Has(id) {
			return nil
		}
		cd.seen.Add(id)
		cd.subs = append(cd.subs, ghdAtom{set: canon, orig: orig})
		return nil
	}
	if o.exact {
		// f⁺ restricted to the scope: all non-empty subsets of e ∩ scope.
		for _, ed := range es {
			e.poll()
			base := o.h.Edge(ed).Intersect(scope)
			if err := addAllSubsets(base, func(s hypergraph.VertexSet) error { return add(s, ed) }); err != nil {
				o.err = err
				return
			}
		}
		return
	}
	// The BIP family f(H,k) restricted to the scope: subsets of
	// e ∩ (e1 ∪ … ∪ ej) ∩ scope over ≤ k generator edges. Base sets
	// reached by several tuples are enumerated once (baseSeen); the
	// depth-indexed bufs hold the running intersections.
	var baseSeen hypergraph.Interner
	bufs := make([]hypergraph.VertexSet, o.k+1)
	for i := range bufs {
		bufs[i] = hypergraph.NewVertexSet(o.h.NumVertices())
	}
	for _, ed := range es {
		eScoped := o.h.Edge(ed).Intersect(scope)
		addForEdge := func(s hypergraph.VertexSet) error { return add(s, ed) }
		var rec func(start, depth int, inter hypergraph.VertexSet) error
		rec = func(start, depth int, inter hypergraph.VertexSet) error {
			if depth > 0 {
				if _, _, isNew := baseSeen.Intern(inter); isNew {
					if err := addAllSubsets(inter, addForEdge); err != nil {
						return err
					}
				}
			}
			if depth == o.k {
				return nil
			}
			for oi := start; oi < len(es); oi++ {
				if es[oi] == ed {
					continue
				}
				e.poll()
				ni := bufs[depth+1].CopyFrom(inter).UnionIntersection(eScoped, o.h.Edge(es[oi]))
				bufs[depth+1] = ni
				if err := rec(oi+1, depth+1, ni); err != nil {
					return err
				}
			}
			return nil
		}
		if err := rec(0, 0, bufs[0].Reset()); err != nil {
			o.err = err
			return
		}
	}
}

// CheckGHDViaBIP decides Check(GHD,k) using the Theorem 4.11/4.15
// technique: search for an HD of H augmented with the polynomially many
// subedges f(H,k) that suffice under the bounded intersection property,
// and charge the resulting covers back to the original edges, yielding a
// GHD of H. The subedge pool is generated lazily per subproblem — only
// subedges of edges intersecting the current scope W ∪ C are ever
// candidates, and only once the original edges alone have failed — with
// a shared interned pool keeping memo keys stable (see ghdOracle).
//
// The procedure is sound and complete for every hypergraph (f(H,k)
// always contains the required subedges e ∩ Bu of bag-maximal GHDs — the
// BIP only bounds how many sets f(H,k) has). For hypergraphs with large
// intersection width the generated pool may exceed the cap, in which
// case an error is returned.
func CheckGHDViaBIP(h *hypergraph.Hypergraph, k int, opt Options) (*decomp.Decomp, error) {
	return checkGHD(h, k, opt, false, nil)
}

// CheckGHDExact decides Check(GHD,k) for small hypergraphs using the
// limit subedge function f⁺ (all subedges), for which
// hw(H ∪ f⁺(H)) = ghw(H) holds unconditionally.
func CheckGHDExact(h *hypergraph.Hypergraph, k int, opt Options) (*decomp.Decomp, error) {
	return checkGHD(h, k, opt, true, nil)
}

// checkGHD runs the engine with a ghdOracle; see CheckGHDViaBIPCtx in
// cancel.go for the context-aware entry point.
func checkGHD(h *hypergraph.Hypergraph, k int, opt Options, exact bool, done <-chan struct{}) (*decomp.Decomp, error) {
	if k <= 0 || h.NumEdges() == 0 {
		return nil, nil
	}
	max := opt.MaxSubedges
	if max == 0 {
		max = defaultMaxSubedges
	}
	if par := effectiveParallelism(opt.Parallelism, h); par > 1 {
		return runParallel(h, func() coverOracle {
			return newGHDOracle(h, k, exact, max)
		}, done, par, opt.Budget, opt.Stats)
	}
	o := newGHDOracle(h, k, exact, max)
	e := newEngine(h, o, false, done)
	e.sink = opt.Stats
	defer e.finish()
	key, ok := e.decompose(h.Vertices(), engineState{a: hypergraph.NewVertexSet(h.NumVertices())})
	if o.err != nil {
		return nil, o.err
	}
	if !ok {
		return nil, nil
	}
	d := decomp.New(h)
	e.build(d, -1, key, nil)
	return d, nil
}

// GHWViaBIP computes ghw(H) by iterating CheckGHDViaBIP from the clique
// lower bound.
func GHWViaBIP(h *hypergraph.Hypergraph, maxK int, opt Options) (int, *decomp.Decomp, error) {
	if maxK <= 0 {
		maxK = h.NumEdges()
	}
	for k := cliqueStartK(h); k <= maxK; k++ {
		d, err := CheckGHDViaBIP(h, k, opt)
		if err != nil {
			return -1, nil, err
		}
		if d != nil {
			return k, d, nil
		}
	}
	return -1, nil, fmt.Errorf("core: ghw(H) > %d", maxK)
}
