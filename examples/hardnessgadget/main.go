// hardnessgadget: a guided tour of the Theorem 3.2 NP-hardness
// construction. Builds H(φ) for the paper's Example 3.3 formula and for
// an unsatisfiable formula, shows the gadget structure, validates the
// Table 1 witness GHD on the satisfiable side, and runs the exact-LP
// checks that block width 2 on the unsatisfiable side.
package main

import (
	"fmt"
	"log"

	"hypertree/internal/core"
	"hypertree/internal/decomp"
	"hypertree/internal/lp"
	"hypertree/internal/sat"
)

func main() {
	fmt.Println("== The Lemma 3.1 gadget ==")
	h0, _ := sat.StandaloneGadget(2, 2)
	fhw, _ := core.ExactFHW(h0)
	ghw, _ := core.ExactGHW(h0)
	fmt.Printf("gadget H0 (|M1|=|M2|=2): %d vertices, %d edges, fhw=%s, ghw=%d\n",
		h0.NumVertices(), h0.NumEdges(), fhw.RatString(), ghw)
	fmt.Println("every width-2 FHD is forced through bags around the three 4-cliques")
	fmt.Println()

	fmt.Println("== Satisfiable side: Example 3.3 ==")
	phi := sat.NewCNF(sat.Clause{1, -2, 3}, sat.Clause{-1, 2, -3})
	fmt.Println("φ =", phi)
	r := sat.BuildReduction(phi)
	fmt.Printf("H(φ): %d vertices, %d edges; path positions [2n+3;m] = [%d;%d]\n",
		r.H.NumVertices(), r.H.NumEdges(), r.Rows, r.Cols)
	sigma := []bool{false, true, false, false} // the paper's σ
	d, err := sat.WitnessGHD(r, sigma)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Validate(decomp.GHD); err != nil {
		log.Fatal("witness invalid: ", err)
	}
	fmt.Printf("Table 1 witness GHD: %d nodes on a path, width %s — validated\n",
		d.NumNodes(), d.Width().RatString())
	fmt.Println("⇒ ghw(H) = fhw(H) = 2, as Theorem 3.2 predicts for satisfiable φ")
	fmt.Println()

	fmt.Println("== Unsatisfiable side ==")
	unsat := sat.NewCNF(sat.Clause{1, 1, 1}, sat.Clause{-1, -1, -1})
	fmt.Println("φ =", unsat, " (unsatisfiable)")
	ru := sat.BuildReduction(unsat)
	fmt.Printf("H(φ): %d vertices, %d edges\n", ru.H.NumVertices(), ru.H.NumEdges())
	fmt.Println("the `only if' direction rests on exact LP facts, verified here:")
	step := func(name string, err error) {
		status := "OK"
		if err != nil {
			status = "FAIL " + err.Error()
		}
		fmt.Printf("  %-58s %s\n", name, status)
	}
	step("ρ*(S ∪ {z1,z2}) = 2 (Lemma 3.5 setting)", ru.VerifyCoreLP())
	step("ρ*(S ∪ {z1,z2,a1,a'1}) > 2 (Claim D blocks shortcuts)", ru.VerifyBlockingSets())
	step("Lemma 3.6: only the six p-edges cover the path bag", ru.VerifyLemma36(ru.Min()))
	step("Lemma 3.5: unequal complementary weights infeasible",
		ru.VerifyComplementaryWeights(ru.Min(), 1, lp.R(1, 2)))
	fmt.Println("⇒ any width-2 FHD would have to walk the path and pick a satisfied")
	fmt.Println("  literal per clause (Claim I) — impossible for unsatisfiable φ")
}
