// cqplanner: decomposition-guided join planning and execution — the
// application the paper's Section 1 motivates. A cyclic query that naive
// join ordering handles badly is decomposed into a width-2 GHD; each bag
// becomes a join of ≤ 2 relations bounded by the AGM inequality, and the
// Yannakakis sweep over the decomposition tree answers the query with
// intermediate results bounded by input + output.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hypertree/internal/core"
	"hypertree/internal/cover"
	"hypertree/internal/csp"
	"hypertree/internal/eval"
)

func main() {
	// A "cyclic sensor join": triangles sharing edges, the classic case
	// where acyclic-query techniques fail but ghw = 2 suffices.
	q, err := csp.ParseCQ(`ans() :-
		up(A,B), up(B,C), link(A,C), down(C,D), down(D,E), link(C,E)`)
	if err != nil {
		log.Fatal(err)
	}
	h := q.H
	fmt.Printf("query: %d atoms over %d variables, acyclic=%v\n",
		len(q.Atoms), h.NumVertices(), h.IsAcyclic())

	ghw, d, err := core.GHWViaBIP(h, 4, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: GHD of width %d with %d bags\n\n%s\n", ghw, d.NumNodes(), d)

	// Generate data: random graphs with some matching structure.
	rng := rand.New(rand.NewSource(7))
	db := eval.Database{}
	n := 60
	for e := 0; e < h.NumEdges(); e++ {
		var attrs []string
		h.Edge(e).ForEach(func(v int) bool {
			attrs = append(attrs, h.VertexName(v))
			return true
		})
		r := eval.NewRelation(attrs...)
		for i := 0; i < n; i++ {
			vals := make([]string, len(attrs))
			for j := range vals {
				vals[j] = fmt.Sprintf("n%d", rng.Intn(12))
			}
			r.Insert(vals...)
		}
		db[e] = r
	}

	// Cost bound per bag: the AGM inequality with the bag's fractional
	// cover.
	fmt.Println("per-bag AGM bounds (max intermediate size the plan can incur):")
	for u := range d.Nodes {
		w, gamma := cover.FractionalEdgeCover(h, d.Nodes[u].Bag)
		sizes := make([]int, h.NumEdges())
		weights := make([]float64, h.NumEdges())
		for e := 0; e < h.NumEdges(); e++ {
			sizes[e] = db[e].Size()
			if g, ok := gamma[e]; ok {
				weights[e], _ = g.Float64()
			}
		}
		fmt.Printf("  bag %d: ρ* = %-4s AGM ≤ %.0f tuples\n",
			u, w.RatString(), eval.AGMBound(sizes, weights))
	}

	// Execute both ways and compare.
	plan, err := eval.EvalDecomp(d, db)
	if err != nil {
		log.Fatal(err)
	}
	naive := eval.NaiveJoin(h, db)
	fmt.Printf("\ndecomposition plan result: %d tuples\n", plan.Size())
	fmt.Printf("naive left-deep join:      %d tuples\n", naive.Size())
	if !eval.Equal(plan, naive) {
		log.Fatal("plans disagree!")
	}
	fmt.Println("results identical — decomposition plan verified")
}
