// benchmarkstudy: a HyperBench-style structural study of a synthetic
// CQ/CSP corpus — the empirical observation motivating the paper's
// restrictions: real workloads overwhelmingly have small intersection
// widths (BIP/BMIP), small degrees (BDP), and small widths, so the
// tractable cases of Check(GHD,k)/Check(FHD,k) are the common ones.
package main

import (
	"fmt"
	"math/rand"

	"hypertree/internal/core"
	"hypertree/internal/csp"
	"hypertree/internal/lp"
)

func main() {
	rng := rand.New(rand.NewSource(2024))
	corpus := csp.SyntheticCorpus(rng, 8)
	s := csp.Collect(corpus)
	pct := func(a int) float64 { return 100 * float64(a) / float64(s.Total) }

	fmt.Println("synthetic corpus (HyperBench shapes: chains, stars, cycles,")
	fmt.Println("snowflakes, random CQs and CSPs)")
	fmt.Printf("  instances:      %d (avg %.1f vars, %.1f atoms)\n",
		s.Total, float64(s.TotalVertices)/float64(s.Total), float64(s.TotalEdges)/float64(s.Total))
	fmt.Printf("  acyclic:        %.0f%%\n", pct(s.Acyclic))
	fmt.Printf("  iwidth ≤ 2:     %.0f%%   (the BIP premise)\n", pct(s.IWidthLE2))
	fmt.Printf("  3-miwidth ≤ 1:  %.0f%%   (the BMIP premise)\n", pct(s.MIWidth3LE1))
	fmt.Printf("  degree ≤ 3:     %.0f%%   (the BDP premise)\n", pct(s.DegreeLE3))

	// Width profile over the tractably-sized instances.
	fmt.Println("\nwidth profile (instances with ≤ 14 atoms):")
	counts := map[int]int{}
	fracBeats := 0
	sampled := 0
	for _, q := range corpus.Queries {
		if q.H.NumEdges() > 14 || q.H.NumVertices() > 18 {
			continue
		}
		sampled++
		w := 0
		for k := 1; k <= 4; k++ {
			if d := core.CheckHD(q.H, k); d != nil {
				w = k
				break
			}
		}
		counts[w]++
		// Does the fractional relaxation beat the integral width?
		if q.H.NumVertices() <= 14 {
			fhw, _ := core.ExactFHW(q.H)
			if fhw != nil && fhw.Cmp(lp.RI(int64(w))) < 0 {
				fracBeats++
			}
		}
	}
	for k := 1; k <= 4; k++ {
		if counts[k] > 0 {
			fmt.Printf("  hw = %d: %d instances\n", k, counts[k])
		}
	}
	if counts[0] > 0 {
		fmt.Printf("  hw > 4: %d instances\n", counts[0])
	}
	fmt.Printf("  fractional width strictly below hw: %d of %d sampled\n", fracBeats, sampled)
	fmt.Println("\nconclusion: like the HyperBench study [23], (multi-)intersections")
	fmt.Println("and degrees are tiny in practice — the paper's tractable classes")
	fmt.Println("cover essentially the whole corpus")
}
