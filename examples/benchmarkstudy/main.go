// benchmarkstudy: a HyperBench-style structural study of a hypergraph
// corpus — the empirical observation motivating the paper's
// restrictions: real workloads overwhelmingly have small intersection
// widths (BIP/BMIP), small degrees (BDP), and small widths, so the
// tractable cases of Check(GHD,k)/Check(FHD,k) are the common ones.
//
// The corpus is loaded from disk through internal/corpus (any mix of
// edge-list, PACE htd and JSON instances); the checked-in mini corpus
// under testdata/corpus is the default. Point -corpus at a directory of
// HyperBench instances to reproduce the study on the real data.
package main

import (
	"flag"
	"fmt"
	"os"

	"hypertree/internal/core"
	"hypertree/internal/corpus"
	"hypertree/internal/lp"
)

func main() {
	dir := flag.String("corpus", "testdata/corpus", "corpus directory or index file")
	flag.Parse()

	instances, err := corpus.Load(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmarkstudy:", err)
		fmt.Fprintln(os.Stderr, "run from the repository root, or pass -corpus <dir>")
		os.Exit(1)
	}

	var total, acyclic, bip, bmip, bdp, verts, edges int
	counts := map[int]int{}
	fracBeats, sampled, hwOver4 := 0, 0, 0
	for _, in := range instances {
		h, _, err := in.Read()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchmarkstudy: %s: %v\n", in.Name, err)
			os.Exit(1)
		}
		c := corpus.Classify(h)
		total++
		verts += h.NumVertices()
		edges += h.NumEdges()
		if c.Acyclic {
			acyclic++
		}
		if c.BIP {
			bip++
		}
		if c.BMIP {
			bmip++
		}
		if c.BDP {
			bdp++
		}

		// Width profile over the tractably-sized instances.
		if h.NumEdges() > 14 || h.NumVertices() > 18 {
			continue
		}
		sampled++
		w := 0
		for k := 1; k <= 4; k++ {
			if d := core.CheckHD(h, k); d != nil {
				w = k
				break
			}
		}
		if w == 0 {
			hwOver4++
			continue
		}
		counts[w]++
		// Does the fractional relaxation beat the integral width?
		if h.NumVertices() <= 14 {
			fhw, _ := core.ExactFHW(h)
			if fhw != nil && fhw.Cmp(lp.RI(int64(w))) < 0 {
				fracBeats++
			}
		}
	}

	pct := func(a int) float64 { return 100 * float64(a) / float64(total) }
	fmt.Printf("corpus %s (HyperBench shapes: paths, cycles, grids, cliques,\n", *dir)
	fmt.Println("hypercycles, stars, chains, snowflakes and CQ patterns)")
	fmt.Printf("  instances:      %d (avg %.1f vertices, %.1f edges)\n",
		total, float64(verts)/float64(total), float64(edges)/float64(total))
	fmt.Printf("  acyclic:        %.0f%%\n", pct(acyclic))
	fmt.Printf("  iwidth ≤ 2:     %.0f%%   (the BIP premise)\n", pct(bip))
	fmt.Printf("  3-miwidth ≤ 1:  %.0f%%   (the BMIP premise)\n", pct(bmip))
	fmt.Printf("  degree ≤ 3:     %.0f%%   (the BDP premise)\n", pct(bdp))

	fmt.Printf("\nwidth profile (%d instances with ≤ 14 edges):\n", sampled)
	for k := 1; k <= 4; k++ {
		if counts[k] > 0 {
			fmt.Printf("  hw = %d: %d instances\n", k, counts[k])
		}
	}
	if hwOver4 > 0 {
		fmt.Printf("  hw > 4: %d instances\n", hwOver4)
	}
	fmt.Printf("  fractional width strictly below hw: %d of %d sampled\n", fracBeats, sampled)
	fmt.Println("\nconclusion: like the HyperBench study [23], (multi-)intersections")
	fmt.Println("and degrees are tiny in practice — the paper's tractable classes")
	fmt.Println("cover essentially the whole corpus")
}
