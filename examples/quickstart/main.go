// Quickstart: parse a conjunctive query, inspect the structural
// properties that decide which of the paper's algorithms apply, compute
// its widths, and print a width-optimal generalized hypertree
// decomposition.
package main

import (
	"fmt"
	"log"

	"hypertree/internal/core"
	"hypertree/internal/csp"
	"hypertree/internal/decomp"
)

func main() {
	// A cyclic 6-atom join: a ring of binary relations with one ternary
	// "shortcut" — not acyclic, but ghw 2.
	q, err := csp.ParseCQ(`ans(A,F) :-
		r1(A,B), r2(B,C), r3(C,D), r4(D,E), r5(E,F), r6(F,A), s(B,D,F).`)
	if err != nil {
		log.Fatal(err)
	}
	h := q.H
	fmt.Printf("query %s: %d atoms, %d variables\n", q.Name, len(q.Atoms), h.NumVertices())
	fmt.Printf("acyclic: %v, iwidth: %d (BIP), 3-miwidth: %d (BMIP), degree: %d (BDP)\n",
		h.IsAcyclic(), h.IntersectionWidth(), h.MultiIntersectionWidth(3), h.Degree())

	// Hypertree width via the polynomial Check(HD,k) of [27].
	hw, _ := core.HW(h, 5)
	fmt.Printf("hw  = %d (det-k-decomp)\n", hw)

	// Generalized hypertree width via the paper's BIP augmentation
	// (Theorem 4.11): subedges are added, an HD is computed, and the HD
	// is mapped back to a GHD of the query.
	ghw, ghd, err := core.GHWViaBIP(h, 5, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ghw = %d (Check(GHD,k) under BIP)\n", ghw)

	// Fractional hypertree width, exactly (the query is small).
	fhw, _ := core.ExactFHW(h)
	fmt.Printf("fhw = %s (exact elimination DP)\n", fhw.RatString())

	if err := ghd.Validate(decomp.GHD); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwidth-optimal GHD (every bag covered by ≤ ghw atoms):")
	fmt.Print(ghd)
}
