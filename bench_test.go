package hypertree_test

// One benchmark per experiment of DESIGN.md's per-experiment index
// (E1–E14). Each bench regenerates the series its paper artifact
// predicts — cover numbers, widths, witness validations, approximation
// qualities — and reports the relevant scalar as a custom metric where
// meaningful, so `go test -bench=.` reproduces the paper-vs-measured
// tables of EXPERIMENTS.md.

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"testing"

	"hypertree/internal/core"
	"hypertree/internal/cover"
	"hypertree/internal/csp"
	"hypertree/internal/decomp"
	"hypertree/internal/hypergraph"
	"hypertree/internal/lp"
	"hypertree/internal/ordenc"
	"hypertree/internal/sat"
	"hypertree/internal/vc"
)

// BenchmarkE01CliqueCovers — Lemma 2.3: ρ(K_2n) = ρ*(K_2n) = n.
func BenchmarkE01CliqueCovers(b *testing.B) {
	for _, n := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			k := hypergraph.Clique(2 * n)
			for i := 0; i < b.N; i++ {
				if cover.Rho(k) != n || cover.RhoStar(k).Cmp(lp.RI(int64(n))) != 0 {
					b.Fatal("Lemma 2.3 violated")
				}
			}
		})
	}
}

// BenchmarkE02GadgetWidths — Figure 1 / Lemma 3.1: the gadget has
// fhw = ghw = 2 regardless of |M|.
func BenchmarkE02GadgetWidths(b *testing.B) {
	for _, m := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h, _ := sat.StandaloneGadget(m, m)
				fhw, _ := core.ExactFHW(h)
				if fhw.Cmp(lp.RI(2)) != 0 {
					b.Fatal("gadget fhw != 2")
				}
			}
		})
	}
}

// BenchmarkE03ReductionYes — Theorem 3.2 "if" / Table 1: building H(φ)
// and validating the width-2 witness GHD, over growing formulas.
func BenchmarkE03ReductionYes(b *testing.B) {
	for _, nm := range [][2]int{{1, 1}, {2, 2}, {3, 2}, {4, 3}} {
		b.Run(fmt.Sprintf("n=%d_m=%d", nm[0], nm[1]), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			var cnf *sat.CNF
			var model []bool
			for {
				cnf = sat.Random3SAT(rng, nm[0], nm[1])
				if model = cnf.Solve(); model != nil {
					break
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := sat.BuildReduction(cnf)
				d, err := sat.WitnessGHD(r, model)
				if err != nil || d.Validate(decomp.GHD) != nil || d.Width().Cmp(lp.RI(2)) != 0 {
					b.Fatal("witness construction failed")
				}
				b.ReportMetric(float64(r.H.NumVertices()), "vertices")
			}
		})
	}
}

// BenchmarkE04ReductionLemmas — Theorem 3.2 "only if": exact-LP checks
// of Lemmas 3.5/3.6 on the reduction hypergraph.
func BenchmarkE04ReductionLemmas(b *testing.B) {
	cnf := sat.NewCNF(sat.Clause{1, 1, 1}, sat.Clause{-1, -1, -1}) // unsat
	r := sat.BuildReduction(cnf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.VerifyCoreLP() != nil || r.VerifyLemma36(r.Min()) != nil {
			b.Fatal("reduction lemmas violated")
		}
	}
}

// BenchmarkE05ExampleH0 — Example 4.3 / Figures 4–6: hw = 3 > ghw = 2.
func BenchmarkE05ExampleH0(b *testing.B) {
	h := hypergraph.ExampleH0()
	for i := 0; i < b.N; i++ {
		hw, _ := core.HW(h, 4)
		ghw, _ := core.ExactGHW(h)
		if hw != 3 || ghw != 2 {
			b.Fatalf("H0 widths hw=%d ghw=%d", hw, ghw)
		}
	}
}

// BenchmarkE06UnionIntersectionTree — Figure 7 / Example 4.12.
func BenchmarkE06UnionIntersectionTree(b *testing.B) {
	h := hypergraph.ExampleH0()
	d := decomp.Figure6bGHD(h)
	e2, _ := h.EdgeIDByName("e2")
	v3, _ := h.VertexID("v3")
	v9, _ := h.VertexID("v9")
	want := hypergraph.SetOf(v3, v9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, _, err := core.UnionOfIntersectionsTree(d, 0, e2)
		if err != nil || !tree.LeafUnion(h).Equal(want) {
			b.Fatal("Figure 7 tree wrong")
		}
	}
}

// BenchmarkE07CheckGHDBIP — Theorem 4.11: Check(GHD,k) via BIP
// augmentation, scaling over instance size.
func BenchmarkE07CheckGHDBIP(b *testing.B) {
	for _, size := range []int{6, 9, 12} {
		b.Run(fmt.Sprintf("grid2x%d", size/2), func(b *testing.B) {
			g := hypergraph.Grid(2, size/2)
			for i := 0; i < b.N; i++ {
				d, err := core.CheckGHDViaBIP(g, 2, core.Options{})
				if err != nil || d == nil {
					b.Fatal("grid has ghw 2")
				}
			}
		})
	}
}

// BenchmarkE08CheckFHDBDP — Theorem 5.2: Check(FHD,k) under bounded
// degree. The lazy leg is the default since PR 5 (per-scope f⁺ atoms,
// warm-started cover LPs); the eager leg reconstructs the pre-PR-5
// pipeline by materializing the full closure and passing it through
// FHDOptions.Subedges.
func BenchmarkE08CheckFHDBDP(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	h := hypergraph.RandomBoundedDegree(rng, 7, 5, 3, 2)
	fhw, _ := core.ExactFHW(h)
	if fhw == nil {
		b.Skip("degenerate instance")
	}
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := core.CheckFHD(h, fhw, core.FHDOptions{})
			if err != nil || d == nil {
				b.Fatal("CheckFHD must accept at fhw")
			}
		}
	})
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			subs, err := core.FullSubedgeClosure(h, 0)
			if err != nil {
				b.Fatal(err)
			}
			d, err := core.CheckFHD(h, fhw, core.FHDOptions{Subedges: subs})
			if err != nil || d == nil {
				b.Fatal("CheckFHD must accept at fhw")
			}
		}
	})
}

// BenchmarkE08CheckFHDGrid — the FHD check on grid instances, where the
// support enumeration solves long runs of sibling cover LPs (the
// warm-start + lazy-closure showcase of PR 5).
func BenchmarkE08CheckFHDGrid(b *testing.B) {
	h := hypergraph.Grid(2, 4)
	k := lp.RI(2) // fhw(grid 2×4) = 2
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := core.CheckFHD(h, k, core.FHDOptions{})
			if err != nil || d == nil {
				b.Fatal("CheckFHD must accept the 2×4 grid at 2")
			}
		}
	})
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			subs, err := core.FullSubedgeClosure(h, 0)
			if err != nil {
				b.Fatal(err)
			}
			d, err := core.CheckFHD(h, k, core.FHDOptions{Subedges: subs})
			if err != nil || d == nil {
				b.Fatal("CheckFHD must accept the 2×4 grid at 2")
			}
		}
	})
}

// BenchmarkE09UnboundedSupport — Example 5.1: ρ*(H_n) = 2 − 1/n with
// support n+1.
func BenchmarkE09UnboundedSupport(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			h := hypergraph.UnboundedSupport(n)
			want := new(big.Rat).Sub(lp.RI(2), lp.R(1, int64(n)))
			for i := 0; i < b.N; i++ {
				w, g := cover.FractionalEdgeCover(h, h.Vertices())
				if w.Cmp(want) != 0 {
					b.Fatal("Example 5.1 value wrong")
				}
				b.ReportMetric(float64(len(g.Support())), "support")
			}
		})
	}
}

// BenchmarkE10FHWApprox — Theorems 6.1/6.20: the PTAAS binary search
// with the exact finder.
func BenchmarkE10FHWApprox(b *testing.B) {
	h := hypergraph.ExampleH0()
	eps := lp.R(1, 4)
	fhw, _ := core.ExactFHW(h)
	limit := new(big.Rat).Add(fhw, eps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := core.FHWApproximation(h, 3, eps, core.ExactFinder)
		if d == nil || d.Width().Cmp(limit) >= 0 {
			b.Fatal("PTAAS out of bounds")
		}
	}
}

// BenchmarkE11LogKApprox — Theorem 6.23: integral-cover approximation
// quality (reported as width ratio ×1000).
func BenchmarkE11LogKApprox(b *testing.B) {
	h := hypergraph.Clique(7)
	fhw, fd := core.ExactFHW(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := core.IntegralizeCovers(fd, 16)
		if g == nil || g.Validate(decomp.GHD) != nil {
			b.Fatal("integralization failed")
		}
		ratio := new(big.Rat).Quo(g.Width(), fhw)
		f, _ := ratio.Float64()
		b.ReportMetric(f, "width-ratio")
	}
	_ = vc.Dimension(h)
}

// BenchmarkE12CorpusStudy — the HyperBench-style corpus statistics.
func BenchmarkE12CorpusStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(3))
		corpus := csp.SyntheticCorpus(rng, 5)
		s := csp.Collect(corpus)
		if s.Total == 0 || s.IWidthLE2*2 < s.Total {
			b.Fatal("corpus shape unexpected")
		}
		b.ReportMetric(100*float64(s.Acyclic)/float64(s.Total), "%acyclic")
	}
}

// BenchmarkE13WidthLift — Section 3 closing: fhw(lift_ℓ(H)) = fhw(H)+ℓ.
func BenchmarkE13WidthLift(b *testing.B) {
	base := hypergraph.Clique(3)
	want := lp.R(5, 2) // 3/2 + 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lifted := sat.WidthLift(base, 1)
		fhw, _ := core.ExactFHW(lifted)
		if fhw.Cmp(want) != 0 {
			b.Fatal("width lift wrong")
		}
	}
}

// BenchmarkE14Transforms — Lemma 4.6 / Theorem A.3: bag-maximalization
// and FNF preserve validity and width.
func BenchmarkE14Transforms(b *testing.B) {
	h := hypergraph.ExampleH0()
	for i := 0; i < b.N; i++ {
		d := decomp.Figure6aGHD(h)
		d.BagMaximalize()
		if !d.IsBagMaximal() || d.Validate(decomp.GHD) != nil {
			b.Fatal("bag-maximalization broke the GHD")
		}
		f := decomp.Figure5HD(h)
		if f.ToFNF() != nil || f.ValidateFNF() != nil {
			b.Fatal("FNF transformation failed")
		}
	}
}

// BenchmarkExactDPScaling — the exact elimination DP ([42]) versus the
// polynomial BIP check: the shape the tractability theorems predict
// (exponential vs polynomial growth in n).
func BenchmarkExactDPScaling(b *testing.B) {
	for _, n := range []int{8, 10, 12, 14} {
		b.Run(fmt.Sprintf("exact_n=%d", n), func(b *testing.B) {
			g := hypergraph.Cycle(n)
			for i := 0; i < b.N; i++ {
				if w, _ := core.ExactGHW(g); w != 2 {
					b.Fatal("cycle ghw != 2")
				}
			}
		})
		b.Run(fmt.Sprintf("bip_n=%d", n), func(b *testing.B) {
			g := hypergraph.Cycle(n)
			for i := 0; i < b.N; i++ {
				if d, _ := core.CheckGHDViaBIP(g, 2, core.Options{}); d == nil {
					b.Fatal("cycle ghw != 2")
				}
			}
		})
	}
}

// BenchmarkLPCover — the exact rational LP on growing covering problems
// (the inner loop of every fractional-width computation).
func BenchmarkLPCover(b *testing.B) {
	for _, n := range []int{6, 10, 14} {
		b.Run(fmt.Sprintf("K%d", n), func(b *testing.B) {
			k := hypergraph.Clique(n)
			for i := 0; i < b.N; i++ {
				if w := cover.RhoStar(k); w == nil {
					b.Fatal("no cover")
				}
			}
		})
	}
}

// BenchmarkLPWarmVsCold — the PR-5 incremental engine against one-shot
// solves on a DFS-shaped sequence of sibling cover LPs: push the edges
// of K_n one by one, solving the cover LP of the union after each push,
// then walk the last stack slot through every remaining edge (a
// retire+add+re-solve per sibling, the FHD oracle's innermost move).
// The warm leg keeps one lp.WarmProblem basis alive across the
// sequence; the cold leg rebuilds each LP with cover.SolveCoverLP as
// the pre-PR-5 oracle did.
func BenchmarkLPWarmVsCold(b *testing.B) {
	k := hypergraph.Clique(8)
	grow := k.NumEdges() / 2
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stack := make([]int, 0, grow)
			solve := func() {
				union := hypergraph.NewVertexSet(k.NumVertices())
				for _, e := range stack {
					union = union.UnionInPlace(k.Edge(e))
				}
				if w, _ := cover.SolveCoverLP(k, stack, union); w == nil {
					b.Fatal("cover LP failed")
				}
			}
			stack = append(stack, 0)
			for e := 1; e < grow; e++ {
				stack = append(stack, e)
				solve()
			}
			for e := grow; e < k.NumEdges(); e++ {
				stack[len(stack)-1] = e
				solve()
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ic := cover.NewIncremental(k.Vertices())
			ic.Push(0, k.Edge(0))
			for e := 1; e < grow; e++ {
				ic.Push(e, k.Edge(e))
				if ic.Solve() == nil {
					b.Fatal("cover LP failed")
				}
			}
			for e := grow; e < k.NumEdges(); e++ {
				ic.Pop()
				ic.Push(e, k.Edge(e))
				if ic.Solve() == nil {
					b.Fatal("cover LP failed")
				}
			}
		}
	})
}

// BenchmarkE07FPTInIntersectionWidth — Theorem 4.15: Check(GHD,k) is FPT
// in the intersection width i; runtime grows with i (the 2^{ik} closure)
// at fixed instance size.
func BenchmarkE07FPTInIntersectionWidth(b *testing.B) {
	for _, i := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("i=%d", i), func(b *testing.B) {
			h := hypergraph.HyperCycle(6, i+2, i)
			for n := 0; n < b.N; n++ {
				d, err := core.CheckGHDViaBIP(h, 2, core.Options{})
				if err != nil || d == nil {
					b.Fatal("hypercycle has ghw 2")
				}
			}
		})
	}
}

// BenchmarkEngineIncrementality — PR 6: the engine's incremental
// connectivity and warm-basis reuse on Check(·,k)-dominated runs. The
// "deepen" pair drives the iterative-deepening FHD loop of
// solve.deepenFHDCheck (reject at k=1, accept at k=2) with a fresh
// cover.BasisCache per level versus one shared across levels, exposing
// the cross-level warm-basis effect; the decision legs pin the
// steady-state cost of the HD/GHD guess loops that now ride
// DynComponents instead of per-guess ComponentsOf.
func BenchmarkEngineIncrementality(b *testing.B) {
	b.Run("checkHD/grid2x4", func(b *testing.B) {
		g := hypergraph.Grid(2, 4)
		for i := 0; i < b.N; i++ {
			if core.CheckHD(g, 3) == nil {
				b.Fatal("grid 2x4 has hw ≤ 3")
			}
		}
	})
	b.Run("checkGHD/grid2x6", func(b *testing.B) {
		g := hypergraph.Grid(2, 6)
		for i := 0; i < b.N; i++ {
			d, err := core.CheckGHDViaBIP(g, 2, core.Options{})
			if err != nil || d == nil {
				b.Fatal("grid 2x6 has ghw 2")
			}
		}
	})
	for _, shared := range []bool{false, true} {
		name := "deepenFHD/fresh-basis"
		if shared {
			name = "deepenFHD/shared-basis"
		}
		b.Run(name, func(b *testing.B) {
			g := hypergraph.Grid(2, 3)
			for i := 0; i < b.N; i++ {
				var basis *cover.BasisCache
				if shared {
					basis = cover.NewBasisCache(0)
				}
				var d *decomp.Decomp
				for k := 1; k <= 2 && d == nil; k++ {
					var err error
					d, err = core.CheckFHD(g, lp.RI(int64(k)), core.FHDOptions{Basis: basis})
					if err != nil {
						b.Fatal(err)
					}
					if d != nil && k != 2 {
						b.Fatal("grid 2x3 must reject at k=1")
					}
				}
				if d == nil {
					b.Fatal("grid 2x3 must accept at k=2")
				}
			}
		})
	}
}

// BenchmarkEngineParallel — PR 8: the multicore engine on E07-style
// decision checks, serial versus 2 and 4 intra-solve workers. The
// accept legs exercise speculative first-acceptance-wins exploration of
// the top-level guess list (the winning guess need not be the serial
// search's first); the reject leg is a complete enumeration, which the
// speculative root partition splits near-evenly across workers — this
// is the leg where a 4-worker run on a ≥4-core host should approach the
// core count. GOMAXPROCS is raised to the worker count for the parallel
// legs (and restored) so single-core CI hosts still exercise the
// machinery, just timesliced.
func BenchmarkEngineParallel(b *testing.B) {
	withProcs := func(b *testing.B, procs int, fn func(opt core.Options)) {
		if prev := runtime.GOMAXPROCS(0); procs > prev {
			runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
		}
		fn(core.Options{Parallelism: procs})
	}
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("E07-grid4x4/accept/procs=%d", procs), func(b *testing.B) {
			g := hypergraph.Grid(4, 4)
			withProcs(b, procs, func(opt core.Options) {
				for i := 0; i < b.N; i++ {
					if core.CheckHDOpt(g, 3, opt) == nil {
						b.Fatal("grid 4x4 has hw ≤ 3")
					}
				}
			})
		})
		b.Run(fmt.Sprintf("E07-grid4x4/reject/procs=%d", procs), func(b *testing.B) {
			g := hypergraph.Grid(4, 4)
			withProcs(b, procs, func(opt core.Options) {
				for i := 0; i < b.N; i++ {
					if core.CheckHDOpt(g, 2, opt) != nil {
						b.Fatal("grid 4x4 has hw > 2")
					}
				}
			})
		})
		b.Run(fmt.Sprintf("E07-hypercycle/accept/procs=%d", procs), func(b *testing.B) {
			h := hypergraph.HyperCycle(10, 4, 2)
			withProcs(b, procs, func(opt core.Options) {
				for i := 0; i < b.N; i++ {
					d, err := core.CheckGHDViaBIP(h, 2, opt)
					if err != nil || d == nil {
						b.Fatal("hypercycle(10,4,2) has ghw 2")
					}
				}
			})
		})
	}
}

// BenchmarkSATOrdering — PR 9: the ordering-based SAT strategy against
// the engine's subedge-based deepening on mid-size grids (24–28
// vertices). Both legs run the full ghw deepening sweep — reject every
// level below 3, accept at 3 — which is exactly the race the portfolio
// stages; the SAT legs keep one incremental solver across levels.
func BenchmarkSATOrdering(b *testing.B) {
	for _, tc := range []struct {
		name       string
		rows, cols int
	}{
		{"grid4x6", 4, 6},
		{"grid4x7", 4, 7},
	} {
		const ghw = 3
		g := hypergraph.Grid(tc.rows, tc.cols)
		b.Run(tc.name+"/sat-ord", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := ordenc.NewGHWSearch(g, ghw)
				if err != nil {
					b.Fatal(err)
				}
				for k := 1; ; k++ {
					d, err := s.Check(nil, k)
					if err != nil {
						b.Fatal(err)
					}
					if d != nil {
						if k != ghw {
							b.Fatalf("accepted at %d, want %d", k, ghw)
						}
						break
					}
				}
			}
		})
		b.Run(tc.name+"/engine", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for k := 1; ; k++ {
					d, err := core.CheckGHDViaBIP(g, k, core.Options{})
					if err != nil {
						b.Fatal(err)
					}
					if d != nil {
						if k != ghw {
							b.Fatalf("accepted at %d, want %d", k, ghw)
						}
						break
					}
				}
			}
		})
	}
}
